(* The experiment harness: regenerates every quantitative claim of the
   paper (there are no machine-run tables in the original — the
   "evaluation" is Figure 1 and the Appendix A case-study numbers, plus the
   Theorem 4.2 bound), one section per experiment of DESIGN.md's index,
   followed by Bechamel micro-benchmarks of the simulator.

     dune exec bench/main.exe                    # all experiments + micro-benches
     dune exec bench/main.exe -- --json out.json # also write the results document
     dune exec bench/main.exe -- --only E1,E4    # run a subset
     dune exec bench/main.exe -- --baseline BENCH_X.json  # diff after the run
     dune exec bench/main.exe -- --progress      # live solver telemetry
     dune exec bench/main.exe -- --verbosity info
     dune exec bench/main.exe -- --jobs 4        # parallel MC + solver frontier
     BLUNTING_KMAX=3 dune exec bench/main.exe    # cap the exact solver's k
   BLUNTING_JOBS=4 dune exec bench/main.exe    # default for --jobs
     BLUNTING_SKIP_BECHAMEL=1 dune exec bench/main.exe

   The --json document follows the Obs.Results schema (see
   lib/obs/results.mli and EXPERIMENTS.md): per-section paper-vs-measured
   rows, section metrics (solver statistics, Monte-Carlo tallies, counter
   and GC deltas scoped to the section), the process-wide Obs.Metrics
   snapshot and the span log. --baseline diffs the freshly produced
   document against a saved BENCH_*.json in-process (Obs.Diff) and exits
   non-zero on hard regressions — paper-value drift, or baseline drift on
   a deterministic quantity. *)

open Util

(* ---- command line --------------------------------------------------- *)

type options = {
  json_path : string option;
  baseline_path : string option;
  trace_out : string option;
  only : string list option;  (* uppercased section ids *)
  progress : bool;
  jobs : int;
  memprof : bool;
  memprof_rate : float;
  memprof_collapsed : string option;
  memo_budget : int option;
  mutable skip_bechamel : bool;
}

let options =
  let json_path = ref None
  and baseline_path = ref None
  and trace_out = ref None
  and only = ref None
  and memprof = ref false
  and memprof_rate = ref 1e-4
  and memprof_collapsed = ref None
  and progress = ref false
  (* default 1, not the core count: every deterministic quantity is
     bit-identical at any job count, but the per-domain solver stats land
     in the results document and would drift against single-job baselines *)
  and jobs = ref (Option.value (Par.Pool.env_jobs ()) ~default:1)
  and memo_budget = ref None
  and skip_bechamel = ref false in
  let usage () =
    Fmt.epr
      "usage: main.exe [--json PATH] [--baseline PATH] [--trace-out PATH] \
       [--only E1,E2,...] [--progress] [--jobs N] [--memo-budget BYTES] \
       [--memprof] [--memprof-rate R] [--memprof-collapsed PATH] \
       [--skip-bechamel] [--verbosity LEVEL]@.";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse rest
    | "--baseline" :: path :: rest ->
        baseline_path := Some path;
        parse rest
    | "--trace-out" :: path :: rest ->
        trace_out := Some path;
        parse rest
    | "--only" :: ids :: rest ->
        only :=
          Some
            (String.split_on_char ',' ids
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> List.map String.uppercase_ascii);
        parse rest
    | "--progress" :: rest ->
        progress := true;
        parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | _ ->
            Fmt.epr "--jobs expects a positive integer@.";
            exit 2);
        parse rest
    | "--memo-budget" :: b :: rest ->
        (match Mdp.Solver.parse_memo_budget b with
        | Ok n when n > 0 -> memo_budget := Some n
        | Ok _ -> memo_budget := None
        | Error e ->
            Fmt.epr "--memo-budget: %s@." e;
            exit 2);
        parse rest
    | "--memprof" :: rest ->
        memprof := true;
        parse rest
    | "--memprof-rate" :: rr :: rest ->
        (match float_of_string_opt rr with
        | Some f when f > 0.0 && f <= 1.0 -> memprof_rate := f
        | _ ->
            Fmt.epr "--memprof-rate expects a probability in (0, 1]@.";
            exit 2);
        parse rest
    | "--memprof-collapsed" :: p :: rest ->
        memprof_collapsed := Some p;
        parse rest
    | "--skip-bechamel" :: rest ->
        skip_bechamel := true;
        parse rest
    | "--verbosity" :: v :: rest ->
        (match Obs.Log.set_verbosity v with
        | Ok () -> ()
        | Error e ->
            Fmt.epr "%s@." e;
            exit 2);
        parse rest
    | arg :: _ ->
        Fmt.epr "unknown argument %s@." arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  if Sys.getenv_opt "BLUNTING_SKIP_BECHAMEL" <> None then skip_bechamel := true;
  {
    json_path = !json_path;
    baseline_path = !baseline_path;
    trace_out = !trace_out;
    only = !only;
    progress = !progress;
    jobs = !jobs;
    memprof = !memprof;
    memprof_rate = !memprof_rate;
    memprof_collapsed = !memprof_collapsed;
    memo_budget = !memo_budget;
    skip_bechamel = !skip_bechamel;
  }

(* One shared domain pool for the whole bench run, installed (and always
   joined, even when a section raises) by [Par.Pool.with_pool] in the
   main entry below. [None] at jobs 1: everything runs sequentially and
   no domain is ever spawned. *)
let pool : Par.Pool.t option ref = ref None

let runs id =
  match options.only with
  | None -> true
  | Some ids -> List.mem (String.uppercase_ascii id) ids

let time label f = Obs.Span.time label f

let kmax =
  match Sys.getenv_opt "BLUNTING_KMAX" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

(* Per-solve solver work: the stats delta around [f]. *)
let stats_delta (b : Mdp.Solver.stats) (a : Mdp.Solver.stats) : Mdp.Solver.stats =
  {
    states = a.states - b.states;
    memo_hits = a.memo_hits - b.memo_hits;
    memo_misses = a.memo_misses - b.memo_misses;
    max_depth = a.max_depth;
  }

let timed_solve label f =
  let before = Model.Weakener_abd.solver_stats () in
  let v, dt = time label f in
  let after = Model.Weakener_abd.solver_stats () in
  (v, dt, stats_delta before after)

let pp_hit_rate ppf s = Fmt.pf ppf "%.1f%%" (100.0 *. Mdp.Solver.hit_rate s)

(* ------------------------------------------------------------------ *)

let e1_atomic () =
  let r = Report.section ~id:"E1" ~title:"Appendix A.1 — weakener with atomic registers" () in
  let v, dt = time "E1 solve atomic" Model.Weakener_atomic.bad_probability in
  let mc =
    Adversary.Monte_carlo.estimate ?pool:!pool ~jobs:options.jobs ~trials:2_000 ~seed:101
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      Programs.Weakener.atomic_config
  in
  Report.row r ~quantity:"adversary-optimal Prob[p2 loops]" ~paper:"exactly 1/2"
    ~paper_value:0.5 ~measured_value:v
    ~measured:(Fmt.str "%.6f (exact, %.2fs)" v dt)
    ();
  Report.row r ~quantity:"termination probability" ~paper:">= 1/2" ~paper_value:0.5
    ~measured_value:(1.0 -. v)
    ~measured:(Fmt.str "%.6f" (1.0 -. v))
    ();
  Report.row r ~quantity:"fair-scheduler Prob[p2 loops]" ~paper:"(not adversarial)"
    ~measured_value:mc.fraction
    ~measured:(Fmt.str "%a" Adversary.Monte_carlo.pp mc)
    ();
  Report.metrics r (Report.mc_json mc);
  Report.finish r

let e2_abd () =
  let r =
    Report.section ~id:"E2" ~title:"Figure 1 / Appendix A.2 — weakener with plain ABD" ()
  in
  Model.Weakener_abd.reset ();
  let wins = Adversary.Figure1.always_wins () in
  let v, dt, st =
    timed_solve "E2 solve ABD k=1" (fun () ->
        Model.Weakener_abd.bad_probability ?pool:!pool ~jobs:options.jobs ~k:1 ())
  in
  Report.row r ~quantity:"Figure 1 adversary vs simulated ABD"
    ~paper:"wins for both coin values"
    ~measured:(if wins then "wins for both coin values" else "FAILED")
    ();
  Report.row r ~quantity:"adversary-optimal Prob[p2 loops] (exact game)"
    ~paper:"1 (termination prob 0)" ~paper_value:1.0 ~measured_value:v
    ~measured:(Fmt.str "%.6f (%.2fs, %d states)" v dt st.states)
    ();
  let vc, dtc, stc =
    timed_solve "E2 solve ABD k=1, C as ABD" (fun () ->
        Model.Weakener_abd.bad_probability ~atomic_c:false ~k:1 ())
  in
  Report.row r ~quantity:"same, with C also implemented as ABD"
    ~paper:"(substitution check)" ~measured_value:vc
    ~measured:(Fmt.str "%.6f (%.1fs)" vc dtc)
    ();
  Report.table_row r
    [
      "solver cost (k=1 / k=1 with ABD C)";
      "(not in paper)";
      Fmt.str "%d / %d states, hit rate %a / %a, %.2fs / %.2fs" st.states stc.states
        pp_hit_rate st pp_hit_rate stc dt dtc;
    ];
  Report.metrics r
    (Report.solver_stats_json (Model.Weakener_abd.solver_stats ())
    @ [
        ("solve_seconds_k1", Obs.Json.Float dt);
        ("solve_seconds_k1_abd_c", Obs.Json.Float dtc);
        ("states_k1", Obs.Json.Int st.states);
        ("states_k1_abd_c", Obs.Json.Int stc.states);
      ]);
  Report.finish r;
  (* the optimal adversary extracted from the solved game: a machine-derived
     counterpart of Figure 1's schedule *)
  Fmt.pr "@.Machine-derived optimal adversary (k = 1), first moves:@.  ";
  let rec walk s n =
    if n = 0 then Fmt.pr "...@."
    else
      match Model.Weakener_abd.best_move s with
      | None -> Fmt.pr "(outcome fixed)@."
      | Some m -> (
          Fmt.pr "%a; " Model.Weakener_abd.Game.pp_move m;
          match Model.Weakener_abd.Game.apply s m with
          | Model.Weakener_abd.Game.Det s' -> walk s' (n - 1)
          | Model.Weakener_abd.Game.Chance dist ->
              Fmt.pr "<chance>; ";
              walk (snd (List.hd dist)) (n - 1))
  in
  walk (Model.Weakener_abd.init ~k:1 ()) 26;
  (* the Figure 1 execution, abridged: p2's reads and the coin *)
  Fmt.pr "@.Figure 1 witness (coin = 0), final reads:@.";
  let tr = Adversary.Figure1.run ~coin:0 in
  let o = Sim.Runtime.outcome tr in
  List.iter
    (fun tag ->
      match History.Outcome.find1 o tag with
      | Some v -> Fmt.pr "  %s = %a@." tag Value.pp v
      | None -> ())
    [ Programs.Weakener.tag_u1; Programs.Weakener.tag_u2; Programs.Weakener.tag_c ]

let e3_abd2 () =
  let r = Report.section ~id:"E3" ~title:"Appendix A.3 — weakener with ABD^2" () in
  Model.Weakener_abd.reset ();
  let v, dt, st =
    timed_solve "E3 solve ABD k=2" (fun () ->
        Model.Weakener_abd.bad_probability ?pool:!pool ~jobs:options.jobs ~k:2 ())
  in
  let generic = Core.Bound.weakener_instance ~k:2 in
  Report.row r ~quantity:"generic bound on Prob[p2 loops] (Thm 4.2)" ~paper:"7/8 = 0.875"
    ~paper_value:0.875 ~measured_value:generic
    ~measured:(Fmt.str "%.6f" generic)
    ();
  Report.row r ~quantity:"refined bound on Prob[p2 loops] (A.3.2)" ~paper:"5/8 = 0.625"
    ~paper_value:0.625 ~measured:"5/8 (analytical)" ();
  Report.row r ~quantity:"exact adversary-optimal Prob[p2 loops]" ~paper:"<= 5/8"
    ~paper_value:0.625 ~measured_value:v
    ~measured:(Fmt.str "%.6f (%.2fs) — the refined bound is tight" v dt)
    ();
  Report.row r ~quantity:"termination probability" ~paper:">= 3/8 = 0.375"
    ~paper_value:0.375 ~measured_value:(1.0 -. v)
    ~measured:(Fmt.str "%.6f" (1.0 -. v))
    ();
  let vc, dtc, stc =
    timed_solve "E3 solve ABD k=2, C as ABD" (fun () ->
        Model.Weakener_abd.bad_probability ~atomic_c:false ~k:2 ())
  in
  Report.row r ~quantity:"same, with C also implemented as ABD^2"
    ~paper:"(substitution check)" ~measured_value:vc
    ~measured:(Fmt.str "%.6f (%.1fs)" vc dtc)
    ();
  Report.table_row r
    [
      "solver cost (k=2 / k=2 with ABD C)";
      "(not in paper)";
      Fmt.str "%d / %d states, hit rate %a / %a" st.states stc.states pp_hit_rate st
        pp_hit_rate stc;
    ];
  Report.metrics r
    [
      ("states_k2", Obs.Json.Int st.states);
      ("states_k2_abd_c", Obs.Json.Int stc.states);
      ("solver_hit_rate_k2", Obs.Json.Float (Mdp.Solver.hit_rate st));
      ("solve_seconds_k2", Obs.Json.Float dt);
      ("solve_seconds_k2_abd_c", Obs.Json.Float dtc);
      ("solver_max_depth", Obs.Json.Int st.max_depth);
    ];
  Report.finish r

let e4_bound_table () =
  let r =
    Report.section ~id:"E4"
      ~title:"Theorem 4.2 — the blunting bound (the paper's formula)"
      ~headers:[] ()
  in
  Fmt.pr
    "Prob[O^k] <= Prob[O_a] + [1 - (max(0,k-r)/k)^(n-1)] (Prob[O] - Prob[O_a])@.@.";
  Fmt.pr "Blunting fraction 1 - ((k-r)/k)^(n-1):@.";
  let ks = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let t = Table.create ("n \\ r, k" :: List.map (fun k -> Fmt.str "k=%d" k) ks) in
  List.iter
    (fun (n, rr) ->
      Table.add_row t
        (Fmt.str "n=%d r=%d" n rr
        :: List.map (fun k -> Fmt.str "%.4f" (Core.Bound.blunt_fraction ~n ~r:rr ~k)) ks))
    [ (2, 1); (3, 1); (3, 2); (5, 1); (5, 3); (10, 2) ];
  Table.print t;
  Fmt.pr "@.Weakener instance (n=3, r=1, Prob[O_a]=1/2, Prob[O]=1):@.";
  let t2 = Table.create [ "k"; "bound on Prob[p2 loops]"; "guaranteed termination" ] in
  List.iter
    (fun k ->
      let b = Core.Bound.weakener_instance ~k in
      Table.add_row t2 [ string_of_int k; Fmt.str "%.6f" b; Fmt.str "%.6f" (1.0 -. b) ];
      Report.json_row r
        ~quantity:(Fmt.str "Thm 4.2 bound on Prob[p2 loops], k=%d" k)
        ~paper:"1/2 + ((k-1)/k)^2 / 2" ~measured_value:b
        ~measured:(Fmt.str "%.6f" b)
        ())
    [ 1; 2; 3; 4; 8; 16; 64 ];
  Table.print t2;
  Fmt.pr "@.k needed for a target blunting fraction (n=3, r=1):@.";
  let t3 = Table.create [ "epsilon"; "min k" ] in
  List.iter
    (fun eps ->
      let mk = Core.Bound.min_k_for ~n:3 ~r:1 ~epsilon:eps in
      Table.add_row t3 [ Fmt.str "%.3f" eps; string_of_int mk ];
      Report.json_row r
        ~quantity:(Fmt.str "min k for blunting fraction <= %.3f (n=3, r=1)" eps)
        ~paper:"smallest k with 1-((k-1)/k)^2 <= eps"
        ~measured_value:(float_of_int mk) ~measured:(string_of_int mk) ())
    [ 0.5; 0.25; 0.1; 0.01 ];
  Table.print t3;
  Report.finish r

let e5_convergence () =
  let r =
    Report.section ~id:"E5"
      ~title:"Convergence of Prob[ABD^k] to the atomic probability"
      ~headers:
        [ "k"; "exact Prob[bad]"; "Thm 4.2 bound"; "(k^2+1)/(2k^2)"; "states"; "hit rate"; "time" ]
      ()
  in
  Fmt.pr "Exact adversary-optimal values (memoized expectimax over the@.";
  Fmt.pr "message-level game); the paper proves convergence to 1/2.@.@.";
  Model.Weakener_abd.reset ();
  for k = 1 to kmax do
    let v, dt, st =
      timed_solve (Fmt.str "E5 solve ABD k=%d" k) (fun () ->
          Model.Weakener_abd.bad_probability ?pool:!pool ~jobs:options.jobs ~k ())
    in
    let law = (float_of_int (k * k) +. 1.0) /. (2.0 *. float_of_int (k * k)) in
    Report.table_row r
      [
        string_of_int k;
        Fmt.str "%.6f" v;
        Fmt.str "%.6f" (Core.Bound.weakener_instance ~k);
        Fmt.str "%.6f" law;
        string_of_int st.states;
        Fmt.str "%a" pp_hit_rate st;
        Fmt.str "%.1fs" dt;
      ];
    Report.json_row r
      ~quantity:(Fmt.str "exact Prob[bad], ABD^%d" k)
      ~paper:(Fmt.str "<= %.6f (Thm 4.2); law (k^2+1)/(2k^2) = %.6f"
                (Core.Bound.weakener_instance ~k) law)
      ~paper_value:law ~measured_value:v
      ~measured:(Fmt.str "%.6f" v)
      ();
    Report.metrics r
      [
        (Fmt.str "states_k%d" k, Obs.Json.Int st.states);
        (Fmt.str "solver_hit_rate_k%d" k, Obs.Json.Float (Mdp.Solver.hit_rate st));
        (Fmt.str "solve_seconds_k%d" k, Obs.Json.Float dt);
      ]
  done;
  Report.metrics r
    (Report.solver_stats_json (Model.Weakener_abd.solver_stats ()));
  Report.finish r;
  Fmt.pr
    "@.The exact optimum follows (k^2+1)/(2k^2) on this instance — strictly@.\
     inside the paper's worst-case bound and converging to the atomic 1/2.@.";
  if Sys.getenv_opt "BLUNTING_SERVERS5" <> None then begin
    Fmt.pr "@.Replica-count robustness (BLUNTING_SERVERS5 set; ~4 min):@.";
    let v, dt =
      time "E5 solve 5 replicas" (fun () ->
          Model.Weakener_abd.bad_probability ~servers:5 ~k:1 ())
    in
    Fmt.pr "  5 replicas, k = 1: exact Prob[bad] = %.6f (%.0fs) — the@." v dt;
    Fmt.pr "  Figure 1 attack is independent of the replica count.@."
  end

let run_random_config ?(max_steps = 1_000_000) ~seed config =
  let rng = Rng.of_int seed in
  let t = Sim.Runtime.create config (Sim.Runtime.Gen (Rng.split rng)) in
  match Sim.Runtime.run t ~max_steps (fun _ evs -> Rng.pick rng evs) with
  | Sim.Runtime.Completed -> t
  | _ -> failwith "bench run did not complete"

let rw_config obj =
  let open Sim.Proc.Syntax in
  let program ~self =
    let call tag meth arg = Sim.Obj_impl.call obj ~self ~tag ~meth ~arg in
    let* _ = call "w1" "write" (Value.int (self + 10)) in
    let* _ = call "r1" "read" Value.unit in
    let* _ = call "w2" "write" (Value.int (self + 20)) in
    let* _ = call "r2" "read" Value.unit in
    Sim.Proc.return ()
  in
  {
    Sim.Runtime.n = 3;
    objects = [ obj ];
    program;
    enable_crashes = false;
    max_crashes = 0;
  }

let e6_linearizability () =
  let r =
    Report.section ~id:"E6"
      ~title:"Theorem 4.1 — O^k equivalent to O; every object linearizable"
      ~headers:[ "object"; "linearizable histories / random schedules" ] ()
  in
  let reg_spec = History.Spec.register ~init:(Value.int 0) in
  let snap_spec = History.Spec.snapshot ~n:3 ~init:(Value.int 0) in
  let sweep name spec mk_config =
    let trials = 60 in
    let ok = ref 0 in
    for seed = 1 to trials do
      let t = run_random_config ~seed (mk_config ()) in
      if Lin.Check.check spec (Sim.Runtime.history t) then incr ok
    done;
    (name, !ok, trials)
  in
  let snapshot_config () =
    let obj = Objects.Afek_snapshot.make ~name:"S" ~n:3 ~init:(Value.int 0) in
    let open Sim.Proc.Syntax in
    let program ~self =
      let call tag meth arg = Sim.Obj_impl.call obj ~self ~tag ~meth ~arg in
      let* _ =
        call "u" "update" (Value.pair (Value.int self) (Value.int (self + 1)))
      in
      let* _ = call "s" "scan" Value.unit in
      Sim.Proc.return ()
    in
    {
      Sim.Runtime.n = 3;
      objects = [ obj ];
      program;
      enable_crashes = false;
      max_crashes = 0;
    }
  in
  List.iter
    (fun (name, ok, trials) ->
      Report.table_row r [ name; Fmt.str "%d / %d" ok trials ];
      Report.json_row r
        ~quantity:(Fmt.str "%s linearizable histories" name)
        ~paper:"all (Thm 4.1)" ~paper_value:(float_of_int trials)
        ~measured_value:(float_of_int ok)
        ~measured:(Fmt.str "%d / %d" ok trials)
        ())
    [
      sweep "ABD" reg_spec (fun () ->
          rw_config (Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0)));
      sweep "ABD^2" reg_spec (fun () ->
          rw_config (Objects.Abd.make_k ~k:2 ~name:"R" ~n:3 ~init:(Value.int 0)));
      sweep "ABD^4" reg_spec (fun () ->
          rw_config (Objects.Abd.make_k ~k:4 ~name:"R" ~n:3 ~init:(Value.int 0)));
      sweep "Vitanyi-Awerbuch" reg_spec (fun () ->
          rw_config (Objects.Vitanyi_awerbuch.make ~name:"R" ~n:3 ~init:(Value.int 0)));
      sweep "Vitanyi-Awerbuch^2" reg_spec (fun () ->
          rw_config
            (Objects.Vitanyi_awerbuch.make_k ~k:2 ~name:"R" ~n:3 ~init:(Value.int 0)));
      sweep "Afek snapshot" snap_spec snapshot_config;
    ];
  Report.metrics r
    [
      ( "lin_nodes_visited",
        Obs.Json.Int (Option.value ~default:0 (Obs.Metrics.find_counter "lin.nodes_visited")) );
      ( "lin_backtracks",
        Obs.Json.Int (Option.value ~default:0 (Obs.Metrics.find_counter "lin.backtracks")) );
    ];
  Report.finish r;
  (* Theorem 4.1, sequential-equivalence flavour: identical sequential
     outcomes for O and O^k *)
  let sequential_read k =
    let obj =
      if k = 0 then Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0)
      else Objects.Abd.make_k ~k ~name:"R" ~n:3 ~init:(Value.int 0)
    in
    let config = rw_config obj in
    let t = Sim.Runtime.create config (Sim.Runtime.Gen (Rng.of_int 1)) in
    (match
       Sim.Runtime.run t ~max_steps:1_000_000 Adversary.Schedulers.eager_delivery
     with
    | Sim.Runtime.Completed -> ()
    | _ -> failwith "sequential run failed");
    Fmt.str "%a" History.Outcome.pp (Sim.Runtime.outcome t)
  in
  let base = sequential_read 0 in
  Fmt.pr "@.Sequential outcomes identical for ABD vs ABD^k (Thm 4.1): %b@."
    (List.for_all (fun k -> sequential_read k = base) [ 1; 2; 4 ])

let e7_tail_strong () =
  let r =
    Report.section ~id:"E7" ~title:"Section 5 — tail strong linearizability evidence"
      ~headers:[ "object"; "prefix-preserving f on all complete prefixes" ] ()
  in
  (* Theorem 5.1: the timestamp linearization is prefix-preserving on
     sampled ABD executions (all Π-complete prefixes of each trace). *)
  let check ~k trials =
    let ok = ref 0 in
    for seed = 1 to trials do
      let obj =
        if k = 0 then Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0)
        else Objects.Abd.make_k ~k ~name:"R" ~n:3 ~init:(Value.int 0)
      in
      let t = run_random_config ~seed (rw_config obj) in
      if Lin.Abd_lin.prefix_preserving ~obj_name:"R" (Sim.Runtime.trace t) then incr ok
    done;
    (!ok, trials)
  in
  let add name (ok, n) =
    Report.table_row r [ name; Fmt.str "%d / %d traces" ok n ];
    Report.json_row r
      ~quantity:(Fmt.str "%s prefix-preserving traces" name)
      ~paper:"all (Sec 5)" ~paper_value:(float_of_int n) ~measured_value:(float_of_int ok)
      ~measured:(Fmt.str "%d / %d" ok n)
      ()
  in
  add "ABD (Thm 5.1)" (check ~k:0 40);
  add "ABD^2" (check ~k:2 20);
  let check_obj make_config obj_name trials =
    let ok = ref 0 in
    for seed = 1 to trials do
      let t = run_random_config ~seed (make_config ()) in
      if Lin.Abd_lin.prefix_preserving ~obj_name (Sim.Runtime.trace t) then incr ok
    done;
    (!ok, trials)
  in
  let va_config () =
    rw_config (Objects.Vitanyi_awerbuch.make ~name:"R" ~n:3 ~init:(Value.int 0))
  in
  let il_config () =
    let open Sim.Proc.Syntax in
    let obj = Objects.Israeli_li.make ~name:"R" ~n:3 ~writer:0 ~init:(Value.int 0) in
    let program ~self =
      if self = 0 then
        let* _ = Sim.Obj_impl.call obj ~self ~tag:"w" ~meth:"write" ~arg:(Value.int 1) in
        Sim.Proc.return ()
      else
        let* _ = Sim.Obj_impl.call obj ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
        Sim.Proc.return ()
    in
    { Sim.Runtime.n = 3; objects = [ obj ]; program; enable_crashes = false; max_crashes = 0 }
  in
  add "Vitanyi-Awerbuch (Sec 5.3)" (check_obj va_config "R" 25);
  add "Israeli-Li (Sec 5.4)" (check_obj il_config "R" 25);
  Report.finish r;
  (* positive control: enumerated atomic-register execution tree is
     strongly linearizable *)
  let reg = Objects.Atomic_register.make ~name:"X" ~init:(Value.int 0) in
  let open Sim.Proc.Syntax in
  let program ~self =
    if self = 0 then
      let* _ = Sim.Obj_impl.call reg ~self ~tag:"w" ~meth:"write" ~arg:(Value.int 1) in
      Sim.Proc.return ()
    else
      let* _ = Sim.Obj_impl.call reg ~self ~tag:"r" ~meth:"read" ~arg:Value.unit in
      Sim.Proc.return ()
  in
  let config =
    {
      Sim.Runtime.n = 2;
      objects = [ reg ];
      program;
      enable_crashes = false;
      max_crashes = 0;
    }
  in
  let tree = Lin.Enumerate.tree ~preamble_map:Lin.Preamble_map.trivial config in
  let spec = History.Spec.register ~init:(Value.int 0) in
  Fmt.pr "@.Atomic register, exhaustively enumerated (%d execution prefixes):@."
    (Lin.Tree.size tree);
  Fmt.pr "  strongly linearizable: %b (positive control)@."
    (Lin.Tree.strongly_linearizable spec tree)

let e8_cost () =
  let r =
    Report.section ~id:"E8" ~title:"The cost of blunting — message complexity vs k"
      ~headers:
        [ "k"; "client msgs / op"; "total msgs (weakener)"; "total steps (weakener)" ]
      ()
  in
  List.iter
    (fun k ->
      (* deterministic eager run of the weakener with ABD^k for both regs *)
      let config =
        if k = 0 then Programs.Weakener.abd_config ()
        else Programs.Weakener.abd_k_config ~k
      in
      (* counts only (exact at History level) — skip per-event entries *)
      let rt =
        Sim.Runtime.create ~trace_level:Sim.Trace.History config
          (Sim.Runtime.Gen (Rng.of_int 7))
      in
      (match
         Sim.Runtime.run rt ~max_steps:2_000_000 Adversary.Schedulers.eager_delivery
       with
      | Sim.Runtime.Completed -> ()
      | _ -> failwith "eager weakener run failed");
      let tr = Sim.Runtime.trace rt in
      let kk = max k 1 in
      Report.table_row r
        [
          (if k = 0 then "1 (plain)" else string_of_int k);
          Fmt.str "%d broadcasts = %d msgs" (kk + 1) (3 * (kk + 1));
          string_of_int (Sim.Trace.count_messages tr);
          string_of_int (Sim.Trace.count_steps tr);
        ];
      Report.json_row r
        ~quantity:(Fmt.str "weakener total messages, k=%s" (if k = 0 then "plain" else string_of_int k))
        ~paper:"grows linearly in k (Sec 4.2)"
        ~measured_value:(float_of_int (Sim.Trace.count_messages tr))
        ~measured:
          (Fmt.str "%d msgs, %d steps" (Sim.Trace.count_messages tr)
             (Sim.Trace.count_steps tr))
        ())
    [ 0; 2; 3; 4; 6; 8 ];
  Report.finish r;
  Fmt.pr
    "@.Each ABD^k operation performs k query phases plus one update phase:@.\
     latency and message count grow linearly in k while the bad-outcome@.\
     probability shrinks towards the atomic value (E5) — the trade-off of@.\
     Section 4.2.@."

let e9_round_based () =
  let r =
    Report.section ~id:"E9" ~title:"Section 7 — round-based programs with k > T*s"
      ~headers:[ "configuration"; "decided"; "within T rounds" ] ()
  in
  let n = 3 and window = 6 and max_rounds = 100 in
  let k = Core.Round_based.recommended_k ~rounds:window ~steps_per_round:1 in
  let run ~k ~fallback seed =
    let config =
      Programs.Round_based.config ~n ~rounds_before_fallback:fallback ~max_rounds ~k
    in
    let rng = Rng.of_int seed in
    (* agreed_round_of_trace reads labels only — History level suffices *)
    let t =
      Sim.Runtime.create ~trace_level:Sim.Trace.History config
        (Sim.Runtime.Gen (Rng.split rng))
    in
    match Sim.Runtime.run t ~max_steps:10_000_000 (fun _ evs -> Rng.pick rng evs) with
    | Sim.Runtime.Completed ->
        Programs.Round_based.agreed_round_of_trace (Sim.Runtime.trace t) ~n ~max_rounds
    | _ -> None
  in
  let trials = 25 in
  let stats ~k ~fallback =
    let decided = ref 0 and in_window = ref 0 in
    for seed = 1 to trials do
      match run ~k ~fallback seed with
      | Some r ->
          incr decided;
          if r < window then incr in_window
      | None -> ()
    done;
    (!decided, !in_window)
  in
  let d1, w1 = stats ~k ~fallback:window in
  let d2, w2 = stats ~k:1 ~fallback:0 in
  let add name d w =
    Report.table_row r [ name; Fmt.str "%d/%d" d trials; Fmt.str "%d/%d" w trials ];
    Report.json_row r
      ~quantity:(Fmt.str "%s: decided" name)
      ~paper:"terminates under fair scheduling" ~paper_value:(float_of_int trials)
      ~measured_value:(float_of_int d)
      ~measured:(Fmt.str "%d/%d (in window %d/%d)" d trials w trials)
      ()
  in
  add (Fmt.str "ABD^%d for T=%d rounds, then plain" k window) d1 w1;
  add "plain ABD throughout" d2 w2;
  Report.finish r;
  Fmt.pr
    "@.(Under a fair scheduler both configurations terminate; the blunted@.\
     window is where the k-protection against a strong adversary holds,@.\
     per Section 7's recipe k > T*s = %d.)@."
    (window * 1)

let e10_snapshot_game () =
  let r =
    Report.section ~id:"E10" ~title:"The snapshot weakener, solved exactly"
      ~headers:[ "snapshot implementation"; "adversary-optimal Prob[bad]" ] ()
  in
  let add name ~paper v =
    Report.table_row r [ name; Fmt.str "%.6f" v ];
    Report.json_row r ~quantity:name ~paper ~paper_value:0.5 ~measured_value:v
      ~measured:(Fmt.str "%.6f" v)
      ()
  in
  add "atomic (single-step ops)" ~paper:"1/2"
    (Model.Ghw_snapshot_game.atomic_bad_probability ());
  List.iter
    (fun k ->
      add
        (Fmt.str "Afek et al., Snapshot^%d" k)
        ~paper:"1/2 (negative result: no amplification)"
        (Model.Ghw_snapshot_game.afek_bad_probability ?pool:!pool ~jobs:options.jobs ~k ()))
    [ 1; 2; 4 ];
  Report.finish r;
  Fmt.pr
    "@.A machine-checked negative result: on the single-update snapshot@.\
     weakener the Afek implementation already matches the atomic value for@.\
     every k — snapshot scans are monotone and the deciding pair of equal@.\
     collects is fixed before any post-coin step can influence it.@.@.";
  Fmt.pr "Multi-update variant (p0 updates twice; borrowed views reachable):@.";
  let t2 = Table.create [ "snapshot implementation"; "adversary-optimal Prob[bad]" ] in
  Table.add_row t2
    [ "atomic"; Fmt.str "%.6f" (Model.Ghw_multi_game.atomic_bad_probability ()) ];
  List.iter
    (fun k ->
      Table.add_row t2
        [ Fmt.str "Afek et al., Snapshot^%d" k;
          Fmt.str "%.6f" (Model.Ghw_multi_game.afek_bad_probability ?pool:!pool ~jobs:options.jobs ~k ()) ])
    [ 1; 2 ];
  Table.print t2;
  Fmt.pr
    "@.Even with the borrowed-view path reachable (and exercised — see the@.\
     test suite), the value stays at the atomic 1/2: every borrowable view@.\
     already contains p0's earlier write, so \"only p1 visible\" and \"only@.\
     p0 visible via borrow\" demand contradictory pre-coin commitments.@.\
     Weakener-style amplification needs overwritable state (registers, E2);@.\
     the snapshot distortions of GHW arise in different programs.@."

let e11_va_weakener () =
  let r =
    Report.section ~id:"E11"
      ~title:"The weakener over Vitanyi-Awerbuch registers, solved exactly"
      ~headers:[ "k"; "exact Prob[bad], VA^k"; "exact Prob[bad], ABD^k (E5)" ] ()
  in
  List.iter
    (fun k ->
      let v = Model.Weakener_va.bad_probability ?pool:!pool ~jobs:options.jobs ~k () in
      let law = (float_of_int (k * k) +. 1.0) /. (2.0 *. float_of_int (k * k)) in
      Report.table_row r
        [ string_of_int k; Fmt.str "%.6f" v; Fmt.str "%.6f" law ];
      Report.json_row r
        ~quantity:(Fmt.str "exact Prob[bad], VA^%d" k)
        ~paper:"1/2 (VA blocks the attack)" ~paper_value:0.5 ~measured_value:v
        ~measured:(Fmt.str "%.6f" v)
        ())
    [ 1; 2; 3; 4 ];
  Report.finish r;
  Fmt.pr
    "@.The shared-memory register blocks the attack outright: plain VA@.\
     already achieves the atomic 1/2 on the weakener, for every k. ABD's@.\
     exploit depends on freezing replies in transit pre-coin and delivering@.\
     them post-coin; VA's collect reads are instantaneous, so every order@.\
     commitment happens at a definite step and cannot be conditioned on the@.\
     coin. Not being strongly linearizable (VA is not) is necessary but not@.\
     sufficient for a program to be weakened.@."

(* Sequential vs parallel wall clock for the two engine entry points.
   The values are asserted bit-identical — the speedup rows are the only
   machine-dependent part, and their metric names are soft diff keys. *)
let par_speedup () =
  let jobs = if options.jobs > 1 then options.jobs else Par.Pool.default_jobs () in
  let r =
    Report.section ~id:"PAR"
      ~title:(Fmt.str "Parallel engine — sequential vs %d jobs" jobs)
      ~headers:[ "workload"; "seq"; "par"; "speedup"; "identical" ] ()
  in
  let mc ?pool j =
    Adversary.Monte_carlo.estimate ?pool ~jobs:j ~trials:4_000 ~seed:2026
      ~scheduler:Adversary.Schedulers.uniform ~bad:Programs.Weakener.bad
      Programs.Weakener.atomic_config
  in
  let mc_seq, t_mseq = time "PAR mc seq" (fun () -> mc 1) in
  (* The parallel legs run on their own [with_pool]-scoped pool: this
     section may use more domains than the session-wide --jobs pool. *)
  let mc_par, t_mpar =
    time "PAR mc par" (fun () ->
        Par.Pool.with_pool ~jobs (fun pool -> mc ~pool jobs))
  in
  let mc_same = mc_seq = mc_par in
  (* ABD^min(2,kmax): deep enough for real frontier fan-out, yet a
     BLUNTING_KMAX=1 smoke run stays fast *)
  let solve_k = min 2 kmax in
  Model.Weakener_abd.reset ();
  let v_seq, t_sseq =
    time "PAR solve seq" (fun () ->
        Model.Weakener_abd.bad_probability ~k:solve_k ())
  in
  Model.Weakener_abd.reset ();
  (* domain identity is only observable while the pool is alive, so it is
     captured inside the region (negligible next to the solve itself) *)
  let domain_info = ref (0, []) in
  let v_par, t_spar =
    time "PAR solve par" (fun () ->
        Par.Pool.with_pool ~jobs (fun pool ->
            let v = Model.Weakener_abd.bad_probability ~pool ~jobs ~k:solve_k () in
            domain_info := (Par.Pool.spawned_domains (), Par.Pool.domain_ids pool);
            v))
  in
  let solve_same = Float.equal v_seq v_par in
  let speedup seq par = if par > 0.0 then seq /. par else 1.0 in
  let add name seq par same =
    Report.table_row r
      [
        name;
        Fmt.str "%.2fs" seq;
        Fmt.str "%.2fs" par;
        Fmt.str "%.2fx" (speedup seq par);
        string_of_bool same;
      ];
    Report.json_row r
      ~quantity:(Fmt.str "%s: parallel result identical to sequential" name)
      ~paper:"bit-identical at every job count"
      ~paper_value:1.0
      ~measured_value:(if same then 1.0 else 0.0)
      ~measured:(Fmt.str "%b (%.2fs -> %.2fs, %.2fx)" same seq par (speedup seq par))
      ()
  in
  add "Monte-Carlo, 4000 trials" t_mseq t_mpar mc_same;
  add (Fmt.str "exact solve, ABD^%d" solve_k) t_sseq t_spar solve_same;
  (* schema-v3/v4 parallel telemetry: who ran (spawned_domains,
     domain_ids) and what each worker did against the shared memo. The
     claim protocol evaluates each state exactly once, so the exact
     duplicate-key figures are 0 by construction (they stay in the
     document for comparability with pre-rewrite baselines); the v4
     steal/claim counters show how the work actually moved. *)
  let spawned, ids = !domain_info in
  let par_solve_json =
    match Model.Weakener_abd.last_par_stats () with
    | None -> []
    | Some (ps : Mdp.Solver.par_stats) ->
        [
          ( "par_solve",
            Obs.Json.Obj
              [
                ( "domains",
                  Obs.Json.List
                    (List.map
                       (fun (d : Mdp.Solver.domain_stats) ->
                         Obs.Json.Obj
                           [
                             ("domain", Obs.Json.Int d.domain_id);
                             ("states", Obs.Json.Int d.stats.states);
                             ("memo_hits", Obs.Json.Int d.stats.memo_hits);
                             ("memo_misses", Obs.Json.Int d.stats.memo_misses);
                             ( "hit_rate",
                               Obs.Json.Float (Mdp.Solver.hit_rate d.stats) );
                           ])
                       ps.domains) );
                ("distinct_keys", Obs.Json.Int ps.distinct_keys);
                ("duplicated_keys", Obs.Json.Int ps.duplicated_keys);
                ("duplicated_work_pct", Obs.Json.Float ps.duplicated_work_pct);
                (* schema-v4 work-stealing counters *)
                ("steals", Obs.Json.Int ps.steals);
                ("claim_hits", Obs.Json.Int ps.claim_hits);
                ("claim_misses", Obs.Json.Int ps.claim_misses);
                ("pruned_subtrees", Obs.Json.Int ps.pruned_subtrees);
              ] );
        ]
  in
  Report.metrics r
    ([
       ("jobs", Obs.Json.Int jobs);
       ("spawned_domains", Obs.Json.Int spawned);
       ("domain_ids", Obs.Json.List (List.map (fun i -> Obs.Json.Int i) ids));
       ("mc_seq_seconds", Obs.Json.Float t_mseq);
       ("mc_par_seconds", Obs.Json.Float t_mpar);
       ("mc_speedup_timing", Obs.Json.Float (speedup t_mseq t_mpar));
       ("solve_k", Obs.Json.Int solve_k);
       ("solve_seq_seconds", Obs.Json.Float t_sseq);
       ("solve_par_seconds", Obs.Json.Float t_spar);
       ("solve_speedup_timing", Obs.Json.Float (speedup t_sseq t_spar));
     ]
    @ par_solve_json);
  (match Model.Weakener_abd.last_par_stats () with
  | Some ps -> Fmt.pr "@.  %a@." Mdp.Solver.pp_par_stats ps
  | None -> ());
  Report.finish r;
  Fmt.pr
    "@.(Speedup depends on the machine's core count — %d domain%s available@.\
     here; the deterministic quantities above are identical either way.)@."
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* Out-of-core memo: the same E3-class solve twice, in-RAM and under a
   deliberately tiny memo budget that forces spilling and block-cache
   eviction. The claim/resolve protocol makes the spilled solve's value
   and distinct-state count bit-identical to the in-RAM one — the two
   comparison rows below assert exactly that, and the CI spill gate
   diffs them against the committed baseline. The store's cumulative
   telemetry lands both in this section's metrics (prefixed store_, all
   soft diff keys — spill counts and cache traffic are budget- and
   schedule-dependent) and as the document's top-level v6 "store" block
   that `schema_check --expect-store` validates. *)

let store_spill () =
  (* small enough that even the BLUNTING_KMAX=1 smoke solve (~106k
     states, ~9 MB resident) spills heavily; --memo-budget overrides *)
  let budget = Option.value options.memo_budget ~default:(1 lsl 20) in
  let solve_k = min 2 kmax in
  let r =
    Report.section ~id:"STORE"
      ~title:
        (Fmt.str "Out-of-core memo — ABD^%d spilled under a %d-byte budget"
           solve_k budget)
      ()
  in
  Model.Weakener_abd.reset ();
  let v_ram, t_ram, st_ram =
    timed_solve "STORE solve in-RAM" (fun () ->
        Model.Weakener_abd.bad_probability ?pool:!pool ~jobs:options.jobs
          ~k:solve_k ())
  in
  Model.Weakener_abd.reset ();
  let v_sp, t_sp, st_sp =
    timed_solve "STORE solve spilled" (fun () ->
        Model.Weakener_abd.bad_probability ?pool:!pool ~jobs:options.jobs
          ~memo_budget:budget ~k:solve_k ())
  in
  let ss =
    match Model.Weakener_abd.store_stats () with
    | Some s -> s
    | None -> failwith "STORE: the budgeted solve armed no store"
  in
  let value_same = Float.equal v_ram v_sp in
  let states_same = st_ram.Mdp.Solver.states = st_sp.Mdp.Solver.states in
  let spilled = ss.Store.Memo.spilled_entries > 0 && ss.Store.Memo.evictions > 0 in
  Report.row r ~quantity:"spilled value identical to in-RAM"
    ~paper:"bit-identical at any budget" ~paper_value:1.0
    ~measured_value:(if value_same then 1.0 else 0.0)
    ~measured:(Fmt.str "%b (%.6f vs %.6f)" value_same v_ram v_sp)
    ();
  Report.row r ~quantity:"spilled distinct-state count identical to in-RAM"
    ~paper:"exactly-once claim protocol" ~paper_value:1.0
    ~measured_value:(if states_same then 1.0 else 0.0)
    ~measured:
      (Fmt.str "%b (%d vs %d states)" states_same st_ram.Mdp.Solver.states
         st_sp.Mdp.Solver.states)
    ();
  Report.row r ~quantity:"budget forced spilling and cache eviction"
    ~paper:"spilled_entries > 0 and evictions > 0" ~paper_value:1.0
    ~measured_value:(if spilled then 1.0 else 0.0)
    ~measured:
      (Fmt.str "%b (%d entries in %d runs, %d evictions)" spilled
         ss.Store.Memo.spilled_entries ss.Store.Memo.spill_runs
         ss.Store.Memo.evictions)
    ();
  Report.table_row r
    [
      "out-of-core cost";
      "(not in paper)";
      Fmt.str "%.2fs vs %.2fs in-RAM (%.2fx), cache hit rate %.1f%%, read amp \
               %.2f, write amp %.2f"
        t_sp t_ram
        (if t_ram > 0.0 then t_sp /. t_ram else 1.0)
        (100.0 *. Store.Memo.cache_hit_rate ss)
        (Store.Memo.read_amplification ss)
        (Store.Memo.write_amplification ss);
    ];
  Report.metrics r
    [
      ("states", Obs.Json.Int st_sp.Mdp.Solver.states);
      ("store_budget_bytes", Obs.Json.Int budget);
      ("store_spilled_entries", Obs.Json.Int ss.Store.Memo.spilled_entries);
      ("store_spill_runs", Obs.Json.Int ss.Store.Memo.spill_runs);
      ("store_bytes_spilled", Obs.Json.Int ss.Store.Memo.bytes_spilled);
      ("store_evictions", Obs.Json.Int ss.Store.Memo.evictions);
      ("store_disk_hits", Obs.Json.Int ss.Store.Memo.disk_hits);
      ("store_cache_hit_rate", Obs.Json.Float (Store.Memo.cache_hit_rate ss));
      ( "store_read_amplification",
        Obs.Json.Float (Store.Memo.read_amplification ss) );
      ( "store_write_amplification",
        Obs.Json.Float (Store.Memo.write_amplification ss) );
      ("solve_seconds_ram", Obs.Json.Float t_ram);
      ("solve_seconds_spilled", Obs.Json.Float t_sp);
    ];
  Report.set_store_block ss;
  (* release the segment files before the next section *)
  Model.Weakener_abd.reset ();
  Report.finish r;
  Fmt.pr "@.  store: %a@." Store.Memo.pp_stats ss

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the substrate *)

let bechamel () =
  let r =
    Report.section ~id:"BENCH" ~title:"Micro-benchmarks (Bechamel)"
      ~headers:[ "benchmark"; "time/run" ] ()
  in
  let open Bechamel in
  let open Toolkit in
  let run_weakener k () =
    let config =
      if k = 0 then Programs.Weakener.abd_config ()
      else Programs.Weakener.abd_k_config ~k
    in
    let rt =
      Sim.Runtime.create ~trace_level:Sim.Trace.History config
        (Sim.Runtime.Gen (Rng.of_int 3))
    in
    match
      Sim.Runtime.run rt ~max_steps:2_000_000 Adversary.Schedulers.eager_delivery
    with
    | Sim.Runtime.Completed -> ()
    | _ -> failwith "bench run failed"
  in
  let lin_check () =
    let t =
      run_random_config ~seed:5
        (rw_config (Objects.Abd.make ~name:"R" ~n:3 ~init:(Value.int 0)))
    in
    ignore
      (Lin.Check.check
         (History.Spec.register ~init:(Value.int 0))
         (Sim.Runtime.history t))
  in
  let snapshot_run () =
    let obj = Objects.Afek_snapshot.make ~name:"S" ~n:3 ~init:(Value.int 0) in
    let open Sim.Proc.Syntax in
    let program ~self =
      let* _ =
        Sim.Obj_impl.call obj ~self ~tag:"u" ~meth:"update"
          ~arg:(Value.pair (Value.int self) (Value.int self))
      in
      let* _ = Sim.Obj_impl.call obj ~self ~tag:"s" ~meth:"scan" ~arg:Value.unit in
      Sim.Proc.return ()
    in
    let config =
      {
        Sim.Runtime.n = 3;
        objects = [ obj ];
        program;
        enable_crashes = false;
        max_crashes = 0;
      }
    in
    let rt =
      Sim.Runtime.create ~trace_level:Sim.Trace.History config
        (Sim.Runtime.Gen (Rng.of_int 4))
    in
    match Sim.Runtime.run rt ~max_steps:500_000 Adversary.Schedulers.eager_delivery with
    | Sim.Runtime.Completed -> ()
    | _ -> failwith "snapshot bench failed"
  in
  let tests =
    [
      Test.make ~name:"weakener/ABD (E8 latency)" (Staged.stage (run_weakener 0));
      Test.make ~name:"weakener/ABD^2" (Staged.stage (run_weakener 2));
      Test.make ~name:"weakener/ABD^4" (Staged.stage (run_weakener 4));
      Test.make ~name:"weakener/ABD^8" (Staged.stage (run_weakener 8));
      Test.make ~name:"linearizability check (12 ops)" (Staged.stage lin_check);
      Test.make ~name:"Afek snapshot workload" (Staged.stage snapshot_run);
    ]
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ ns ] ->
              let pretty =
                if ns > 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
                else if ns > 1e3 then Fmt.str "%.2f us" (ns /. 1e3)
                else Fmt.str "%.0f ns" ns
              in
              Report.table_row r [ name; pretty ];
              Report.metrics r [ (name, Obs.Json.Float ns) ]
          | _ -> Report.table_row r [ name; "?" ])
        results)
    tests;
  Report.finish r

let () =
  Fmt.pr
    "Blunting an Adversary Against Randomized Concurrent Programs@.\
     — experiment harness (PODC 2022 reproduction)@.";
  if options.progress then begin
    let hook = Some (fun p -> Fmt.epr "  [mdp] %a@." Mdp.Solver.pp_progress p) in
    Model.Weakener_abd.set_progress hook;
    Model.Weakener_va.set_progress hook
  end;
  (match options.trace_out with
  | Some _ -> (
      Obs.Ring.set_enabled true;
      match Obs.Ring.start_runtime_events () with
      | Ok () -> ()
      | Error e -> Fmt.epr "trace: runtime events unavailable (%s)@." e)
  | None -> ());
  let sections =
    [
      ("E1", e1_atomic);
      ("E2", e2_abd);
      ("E3", e3_abd2);
      ("E4", e4_bound_table);
      ("E5", e5_convergence);
      ("E6", e6_linearizability);
      ("E7", e7_tail_strong);
      ("E8", e8_cost);
      ("E9", e9_round_based);
      ("E10", e10_snapshot_game);
      ("E11", e11_va_weakener);
      ("PAR", par_speedup);
      ("STORE", store_spill);
    ]
  in
  (* Start profiling before the shared pool exists: Gc.Memprof covers the
     starting domain plus domains spawned after [start], so this is what
     lets the worker domains' allocations be sampled and attributed. *)
  (if options.memprof then
     match Obs.Memprof.start ~sampling_rate:options.memprof_rate () with
     | Ok () -> ()
     | Error e -> Fmt.epr "memprof: %s (running unprofiled)@." e);
  (* All sections share one pool (installed in [pool]); with_pool joins
     its domains even if a section raises mid-run. *)
  let run_sections () =
    List.iter (fun (id, f) -> if runs id then f ()) sections
  in
  if options.jobs > 1 then
    Par.Pool.with_pool ~jobs:options.jobs (fun p ->
        pool := Some p;
        Fun.protect ~finally:(fun () -> pool := None) run_sections)
  else run_sections ();
  if (not options.skip_bechamel) && runs "BENCH" then bechamel ();
  (match options.trace_out with
  | Some path ->
      Obs.Ring.set_enabled false;
      let d = Obs.Ring.dump () in
      Obs.Ring.write_file path d;
      let events =
        List.fold_left (fun acc (dd : Obs.Ring.domain_dump) ->
            acc + List.length dd.events)
          0 (d.domains @ d.runtime)
      in
      Fmt.pr "@.trace: %d events across %d domain ring(s) -> %s@." events
        (List.length d.domains) path
  | None -> ());
  (* stop before the results document renders: Report.write_json picks up
     the allocation_profile block from the live Memprof aggregation *)
  (if options.memprof && Obs.Memprof.running () then begin
     Obs.Memprof.stop ();
     (match Obs.Memprof.profile () with
     | Some p -> Fmt.pr "@.%a@." (Obs.Memprof.pp ~top:10) p
     | None -> ());
     match options.memprof_collapsed with
     | Some path ->
         Obs.Memprof.write_collapsed path;
         Fmt.pr "collapsed stacks -> %s@." path
     | None -> ()
   end);
  (match options.json_path with
  | Some path -> Report.write_json ~path
  | None -> ());
  (match options.baseline_path with
  | Some path -> (
      match Obs.Diff.load_file path with
      | Error e ->
          Fmt.epr "baseline: %s@." e;
          exit 2
      | Ok baseline -> (
          Fmt.pr "@.=== DIFF  against baseline %s@.@." path;
          match Obs.Diff.diff ~baseline ~current:(Report.doc_json ()) () with
          | Error e ->
              Fmt.epr "diff: %s@." e;
              exit 2
          | Ok report ->
              Obs.Diff.pp_report Fmt.stdout report;
              let rc = Obs.Diff.exit_code report in
              if rc <> 0 then exit rc))
  | None -> ());
  Fmt.pr "@.done.@."
