(* Dual-output experiment reporting.

   Every E-section renders the familiar aligned stdout table AND
   accumulates structured rows in the process-wide Obs.Results document,
   which `main.exe --json PATH` writes at the end of the run. Rows added
   with [row] appear in both; [table_row] is for grid-shaped tables whose
   cells are not (quantity, paper, measured) comparisons — those sections
   publish their machine-readable content via [metrics] instead.

   [section] additionally snapshots the process-wide counter registry and
   the GC state, and [finish] lands the deltas in the section's metrics —
   so a section's "counters"/"gc" objects describe that section's work,
   not cumulative totals since process start. *)

open Util

let doc = Obs.Results.create ~generated_by:"blunting bench harness" ()

type t = {
  table : Table.t;
  section : Obs.Results.section;
  counters0 : (string * int) list;
  gc0 : Obs.Gc_stats.sample;
}

let section ?(headers = [ "quantity"; "paper"; "measured" ]) ~id ~title () =
  Fmt.pr "@.=== %s  %s@.@." id title;
  {
    table = Table.create headers;
    section = Obs.Results.section doc ~id ~title;
    counters0 = Obs.Metrics.counters ();
    gc0 = Obs.Gc_stats.sample ();
  }

(* A comparison row: stdout table + JSON. *)
let row t ?paper_value ?measured_value ~quantity ~paper ~measured () =
  Table.add_row t.table [ quantity; paper; measured ];
  Obs.Results.row t.section ?paper_value ?measured_value ~quantity ~paper ~measured ()

(* A JSON-only comparison row (for grids whose stdout shape differs). *)
let json_row t ?paper_value ?measured_value ~quantity ~paper ~measured () =
  Obs.Results.row t.section ?paper_value ?measured_value ~quantity ~paper ~measured ()

(* A stdout-only table row. *)
let table_row t cells = Table.add_row t.table cells

(* Free-form machine-readable section payload (solver stats, counts...). *)
let metrics t kvs = Obs.Results.add_section_metrics t.section kvs

let solver_stats_json (s : Mdp.Solver.stats) =
  [
    ("solver_states", Obs.Json.Int s.states);
    ("solver_memo_hits", Obs.Json.Int s.memo_hits);
    ("solver_memo_misses", Obs.Json.Int s.memo_misses);
    ("solver_hit_rate", Obs.Json.Float (Mdp.Solver.hit_rate s));
    ("solver_max_depth", Obs.Json.Int s.max_depth);
  ]

(* The v6 "store" block: rendered here (obs cannot depend on the store
   library) and handed to the document via [Obs.Results.set_store_block]. *)
let store_json (s : Store.Memo.stats) =
  Obs.Json.Obj
    [
      ("budget_bytes", Obs.Json.Int s.budget_bytes);
      ("resident_bytes", Obs.Json.Int s.resident_bytes);
      ("spilled_entries", Obs.Json.Int s.spilled_entries);
      ("spill_runs", Obs.Json.Int s.spill_runs);
      ("bytes_spilled", Obs.Json.Int s.bytes_spilled);
      ("payload_bytes", Obs.Json.Int s.payload_bytes);
      ("evictions", Obs.Json.Int s.evictions);
      ("cache_hits", Obs.Json.Int s.cache_hits);
      ("cache_misses", Obs.Json.Int s.cache_misses);
      ("cache_hit_rate", Obs.Json.Float (Store.Memo.cache_hit_rate s));
      ("bytes_read", Obs.Json.Int s.bytes_read);
      ("bytes_written", Obs.Json.Int s.bytes_written);
      ("read_amplification", Obs.Json.Float (Store.Memo.read_amplification s));
      ("write_amplification", Obs.Json.Float (Store.Memo.write_amplification s));
      ("disk_hits", Obs.Json.Int s.disk_hits);
      ("resolved", Obs.Json.Int s.resolved);
    ]

let set_store_block s = Obs.Results.set_store_block (store_json s)

let mc_json (r : Adversary.Monte_carlo.result) =
  [
    ("mc_trials", Obs.Json.Int r.trials);
    ("mc_bad", Obs.Json.Int r.bad);
    ("mc_deadlocks", Obs.Json.Int r.deadlocks);
    ("mc_step_limited", Obs.Json.Int r.step_limited);
    ("mc_fraction", Obs.Json.Float r.fraction);
    ("mc_ci_low", Obs.Json.Float r.ci_low);
    ("mc_ci_high", Obs.Json.Float r.ci_high);
  ]

let finish t =
  let counter_deltas =
    List.filter_map
      (fun (name, v) ->
        let v0 =
          match List.assoc_opt name t.counters0 with Some v0 -> v0 | None -> 0
        in
        if v > v0 then Some (name, Obs.Json.Int (v - v0)) else None)
      (Obs.Metrics.counters ())
  in
  if counter_deltas <> [] then
    Obs.Results.add_section_metrics t.section
      [ ("counters", Obs.Json.Obj counter_deltas) ];
  Obs.Results.add_section_metrics t.section
    [
      ( "gc",
        Obs.Gc_stats.to_json (Obs.Gc_stats.delta t.gc0 (Obs.Gc_stats.sample ())) );
    ];
  if not (Table.is_empty t.table) then Table.print t.table

let doc_json () = Obs.Results.to_json doc

let write_json ~path =
  (try Obs.Results.write doc ~path
   with Sys_error e ->
     Fmt.epr "cannot write results: %s@." e;
     exit 1);
  Fmt.pr "@.results JSON written to %s@." path
