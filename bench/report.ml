(* Dual-output experiment reporting.

   Every E-section renders the familiar aligned stdout table AND
   accumulates structured rows in the process-wide Obs.Results document,
   which `main.exe --json PATH` writes at the end of the run. Rows added
   with [row] appear in both; [table_row] is for grid-shaped tables whose
   cells are not (quantity, paper, measured) comparisons — those sections
   publish their machine-readable content via [metrics] instead. *)

open Util

let doc = Obs.Results.create ~generated_by:"blunting bench harness" ()

type t = { table : Table.t; section : Obs.Results.section }

let section ?(headers = [ "quantity"; "paper"; "measured" ]) ~id ~title () =
  Fmt.pr "@.=== %s  %s@.@." id title;
  { table = Table.create headers; section = Obs.Results.section doc ~id ~title }

(* A comparison row: stdout table + JSON. *)
let row t ?paper_value ?measured_value ~quantity ~paper ~measured () =
  Table.add_row t.table [ quantity; paper; measured ];
  Obs.Results.row t.section ?paper_value ?measured_value ~quantity ~paper ~measured ()

(* A JSON-only comparison row (for grids whose stdout shape differs). *)
let json_row t ?paper_value ?measured_value ~quantity ~paper ~measured () =
  Obs.Results.row t.section ?paper_value ?measured_value ~quantity ~paper ~measured ()

(* A stdout-only table row. *)
let table_row t cells = Table.add_row t.table cells

(* Free-form machine-readable section payload (solver stats, counts...). *)
let metrics t kvs = Obs.Results.add_section_metrics t.section kvs

let solver_stats_json (s : Mdp.Solver.stats) =
  [
    ("solver_states", Obs.Json.Int s.states);
    ("solver_memo_hits", Obs.Json.Int s.memo_hits);
    ("solver_memo_misses", Obs.Json.Int s.memo_misses);
    ("solver_hit_rate", Obs.Json.Float (Mdp.Solver.hit_rate s));
    ("solver_max_depth", Obs.Json.Int s.max_depth);
  ]

let mc_json (r : Adversary.Monte_carlo.result) =
  [
    ("mc_trials", Obs.Json.Int r.trials);
    ("mc_bad", Obs.Json.Int r.bad);
    ("mc_deadlocks", Obs.Json.Int r.deadlocks);
    ("mc_step_limited", Obs.Json.Int r.step_limited);
    ("mc_fraction", Obs.Json.Float r.fraction);
    ("mc_ci_low", Obs.Json.Float r.ci_low);
    ("mc_ci_high", Obs.Json.Float r.ci_high);
  ]

let finish t = Table.print t.table

let write_json ~path =
  (try Obs.Results.write doc ~path
   with Sys_error e ->
     Fmt.epr "cannot write results: %s@." e;
     exit 1);
  Fmt.pr "@.results JSON written to %s@." path
