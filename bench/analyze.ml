(* Offline trace analysis: read an Obs.Ring dump (written by
   `main.exe --trace-out` or `blunting solve/trace --trace-out`) and
   render the Obs.Trace_analysis report.

     dune exec bench/analyze.exe -- trace.json
     dune exec bench/analyze.exe -- --json report.json trace.json
     dune exec bench/analyze.exe -- --chrome trace_chrome.json trace.json
     dune exec bench/analyze.exe -- --top 20 --buckets 40 trace.json

   The human report always goes to stdout; --json additionally writes the
   machine-readable report document and --chrome the Chrome/Perfetto
   trace-event export (per-domain lanes). `blunting trace analyze` is the
   same analysis behind the installed CLI; this executable keeps it
   runnable from a bare bench checkout. *)

let () =
  let json_out = ref None
  and chrome_out = ref None
  and top = ref 10
  and buckets = ref 20
  and path = ref None in
  let usage () =
    Fmt.epr
      "usage: analyze.exe [--json PATH] [--chrome PATH] [--top N] [--buckets \
       N] TRACE.json@.";
    exit 2
  in
  let pos_int flag s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ ->
        Fmt.epr "%s expects a positive integer@." flag;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--json" :: p :: rest ->
        json_out := Some p;
        parse rest
    | "--chrome" :: p :: rest ->
        chrome_out := Some p;
        parse rest
    | "--top" :: n :: rest ->
        top := pos_int "--top" n;
        parse rest
    | "--buckets" :: n :: rest ->
        buckets := pos_int "--buckets" n;
        parse rest
    | arg :: rest when !path = None && String.length arg > 0 && arg.[0] <> '-'
      ->
        path := Some arg;
        parse rest
    | arg :: _ ->
        Fmt.epr "unknown argument %s@." arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> usage () in
  match Obs.Ring.load_file path with
  | Error e ->
      Fmt.epr "%s: %s@." path e;
      exit 1
  | Ok dump ->
      let report = Obs.Trace_analysis.analyze ~top:!top ~buckets:!buckets dump in
      Fmt.pr "%a@." Obs.Trace_analysis.pp report;
      (match !json_out with
      | Some p ->
          Obs.Json.write_file p (Obs.Trace_analysis.to_json report);
          Fmt.pr "report -> %s@." p
      | None -> ());
      (match !chrome_out with
      | Some p ->
          Obs.Chrome_trace.write_file p (Obs.Ring.chrome_events dump);
          Fmt.pr "chrome trace -> %s@." p
      | None -> ())
