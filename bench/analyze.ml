(* Offline trace analysis: read an Obs.Ring dump (written by
   `main.exe --trace-out` or `blunting solve/trace --trace-out`) and
   render the Obs.Trace_analysis report.

     dune exec bench/analyze.exe -- trace.json
     dune exec bench/analyze.exe -- --json report.json trace.json
     dune exec bench/analyze.exe -- --chrome trace_chrome.json trace.json
     dune exec bench/analyze.exe -- --top 20 --buckets 40 trace.json
     dune exec bench/analyze.exe -- --alloc profile.json
     dune exec bench/analyze.exe -- --alloc trace.json

   The human report always goes to stdout; --json additionally writes the
   machine-readable report document and --chrome the Chrome/Perfetto
   trace-event export (per-domain lanes). `blunting trace analyze` is the
   same analysis behind the installed CLI; this executable keeps it
   runnable from a bare bench checkout.

   --alloc switches to the allocation-site view and accepts either input
   kind: a results document (schema v5; the allocation_profile block is
   printed with named sites) or a ring trace dump (the Alloc_sample
   events are aggregated into a hash-keyed site table — the hashes join
   against the site_hash column of a results profile). Sites holding more
   than 10% of sampled words are flagged either way. *)

let hot_share_pct = 10.0

(* The trace-dump side of --alloc: Alloc_sample events carry (site hash,
   sampled words); group them per hash across every domain lane. *)
let alloc_from_dump ~top (dump : Obs.Ring.dump) =
  let tbl : (int, (int * int * int list) ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (dd : Obs.Ring.domain_dump) ->
      List.iter
        (fun (e : Obs.Ring.event) ->
          match e.Obs.Ring.tag with
          | Obs.Ring.Alloc_sample ->
              let r =
                match Hashtbl.find_opt tbl e.a with
                | Some r -> r
                | None ->
                    let r = ref (0, 0, []) in
                    Hashtbl.add tbl e.a r;
                    r
              in
              let samples, words, doms = !r in
              let doms =
                if List.mem dd.domain doms then doms else dd.domain :: doms
              in
              r := (samples + 1, words + e.b, doms)
          | _ -> ())
        dd.events)
    (dump.domains @ dump.runtime);
  let sites =
    Hashtbl.fold (fun h r acc -> (h, !r) :: acc) tbl []
    |> List.sort (fun (h1, (_, w1, _)) (h2, (_, w2, _)) ->
           match compare w2 w1 with 0 -> compare h1 h2 | c -> c)
  in
  let total_words =
    List.fold_left (fun acc (_, (_, w, _)) -> acc + w) 0 sites
  in
  if sites = [] then
    Fmt.pr
      "no alloc_sample events in this dump (profile with --memprof on \
       OCaml >= 5.3)@."
  else begin
    Fmt.pr "allocation samples by site hash (%d site(s), %d sampled words):@."
      (List.length sites) total_words;
    Fmt.pr "  %-10s  %10s  %8s  %7s  %7s@." "site" "words" "samples" "share"
      "domains";
    let shown = List.filteri (fun i _ -> i < top) sites in
    List.iter
      (fun (h, (samples, words, doms)) ->
        let share =
          if total_words > 0 then
            100.0 *. float_of_int words /. float_of_int total_words
          else 0.0
        in
        Fmt.pr "  %08x    %10d  %8d  %6.1f%%  %7d%s@." h words samples share
          (List.length doms)
          (if share > hot_share_pct then "  [>10%]" else ""))
      shown;
    List.iter
      (fun (h, (_, words, _)) ->
        let share =
          if total_words > 0 then
            100.0 *. float_of_int words /. float_of_int total_words
          else 0.0
        in
        if share > hot_share_pct then
          Fmt.pr "WARN: site %08x holds %.1f%% of sampled words (> %.0f%%)@." h
            share hot_share_pct)
      sites;
    Fmt.pr
      "(hashes join the site_hash column of a results-document profile; \
       run --alloc on the --json output for named sites)@."
  end

(* --alloc dispatch: sniff the document kind, then render. *)
let alloc_report ~top path =
  match Obs.Diff.load_file path with
  | Error e ->
      Fmt.epr "%s@." e;
      exit 1
  | Ok doc ->
      if Obs.Json.member "schema_version" doc <> None then
        match Obs.Json.member "allocation_profile" doc with
        | None ->
            Fmt.epr
              "%s: no allocation_profile block — produce one with \
               main.exe --memprof --json or blunting profile --json@."
              path;
            exit 1
        | Some j -> (
            match Obs.Memprof.of_json j with
            | Error e ->
                Fmt.epr "%s: %s@." path e;
                exit 1
            | Ok p -> Fmt.pr "%a@." (Obs.Memprof.pp ~top) p)
      else
        match Obs.Ring.load_file path with
        | Error e ->
            Fmt.epr "%s: %s@." path e;
            exit 1
        | Ok dump -> alloc_from_dump ~top dump

let () =
  let json_out = ref None
  and chrome_out = ref None
  and top = ref 10
  and buckets = ref 20
  and alloc = ref false
  and path = ref None in
  let usage () =
    Fmt.epr
      "usage: analyze.exe [--json PATH] [--chrome PATH] [--top N] [--buckets \
       N] [--alloc] TRACE.json@.";
    exit 2
  in
  let pos_int flag s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> n
    | _ ->
        Fmt.epr "%s expects a positive integer@." flag;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--json" :: p :: rest ->
        json_out := Some p;
        parse rest
    | "--chrome" :: p :: rest ->
        chrome_out := Some p;
        parse rest
    | "--top" :: n :: rest ->
        top := pos_int "--top" n;
        parse rest
    | "--buckets" :: n :: rest ->
        buckets := pos_int "--buckets" n;
        parse rest
    | "--alloc" :: rest ->
        alloc := true;
        parse rest
    | arg :: rest when !path = None && String.length arg > 0 && arg.[0] <> '-'
      ->
        path := Some arg;
        parse rest
    | arg :: _ ->
        Fmt.epr "unknown argument %s@." arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> usage () in
  if !alloc then alloc_report ~top:!top path
  else
  match Obs.Ring.load_file path with
  | Error e ->
      Fmt.epr "%s: %s@." path e;
      exit 1
  | Ok dump ->
      let report = Obs.Trace_analysis.analyze ~top:!top ~buckets:!buckets dump in
      Fmt.pr "%a@." Obs.Trace_analysis.pp report;
      (match !json_out with
      | Some p ->
          Obs.Json.write_file p (Obs.Trace_analysis.to_json report);
          Fmt.pr "report -> %s@." p
      | None -> ());
      (match !chrome_out with
      | Some p ->
          Obs.Chrome_trace.write_file p (Obs.Ring.chrome_events dump);
          Fmt.pr "chrome trace -> %s@." p
      | None -> ())
