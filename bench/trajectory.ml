(* Render the repo's bench trajectory as per-section time-series tables.

     dune exec bench/trajectory.exe                    # scan ./BENCH_*.json
     dune exec bench/trajectory.exe -- --dir /root/repo --section E5
     dune exec bench/trajectory.exe -- --markdown A.json B.json
     dune exec bench/trajectory.exe -- --gc            # GC series only

   One column per trajectory point (committed BENCH_*.json documents, or
   explicit FILES in the order given), one row per series: measured row
   values, numeric section metrics, and the derived states/sec plus
   gc.minor_words_per_step. Exits 1 when any point is unreadable or fails
   schema validation.

   --gc keeps only the GC series (row keys starting with "gc.") — the
   zero-alloc roadmap item's view: minor/major words and the per-step
   allocation rate across baselines, per section. Sections without GC
   metrics are dropped from the output. *)

let () =
  let dir = ref "." and section = ref None and markdown = ref false in
  let gc_only = ref false in
  let files = ref [] in
  let usage () =
    Fmt.epr
      "usage: trajectory.exe [--dir D] [--section ID] [--markdown] [--gc] \
       [FILES...]@.";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--dir" :: d :: rest ->
        dir := d;
        parse rest
    | "--section" :: id :: rest ->
        section := Some id;
        parse rest
    | "--markdown" :: rest ->
        markdown := true;
        parse rest
    | "--gc" :: rest ->
        gc_only := true;
        parse rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
        files := arg :: !files;
        parse rest
    | arg :: _ ->
        Fmt.epr "unknown argument %s@." arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let points =
    match List.rev !files with
    | [] -> Obs.Trajectory.scan ~dir:!dir
    | files ->
        List.fold_left
          (fun acc path ->
            match acc with
            | Error _ as e -> e
            | Ok pts -> (
                match Obs.Trajectory.load path with
                | Ok p -> Ok (p :: pts)
                | Error _ as e -> e))
          (Ok []) files
        |> Result.map List.rev
  in
  match points with
  | Error e ->
      Fmt.epr "%s@." e;
      exit 1
  | Ok [] ->
      Fmt.epr "no trajectory points found (no BENCH_*.json in %s)@." !dir;
      exit 1
  | Ok points ->
      let tables = Obs.Trajectory.tables ?section:!section points in
      let tables =
        if not !gc_only then tables
        else
          List.filter_map
            (fun (t : Obs.Trajectory.table) ->
              let is_gc (k, _) =
                String.length k > 3 && String.sub k 0 3 = "gc."
              in
              match List.filter is_gc t.rows with
              | [] -> None
              | rows -> Some { t with rows })
            tables
      in
      if tables = [] then begin
        Fmt.epr "no matching section%a@."
          (Fmt.option (fun ppf s -> Fmt.pf ppf " %s" s))
          !section;
        exit 1
      end;
      let pp = if !markdown then Obs.Trajectory.pp_markdown else Obs.Trajectory.pp_text in
      List.iter (fun t -> Fmt.pr "@[<v>%a@]@." pp t) tables
