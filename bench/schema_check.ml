(* Validate a bench results document against the Obs.Results schema.

     dune exec bench/schema_check.exe -- bench_smoke.json
     dune exec bench/schema_check.exe -- --expect-no-work E4 bench_smoke.json
     dune exec bench/schema_check.exe -- --expect-par PAR par_smoke.json

   Exits non-zero (with a diagnostic) on parse or schema errors, so the
   @smoke alias fails loudly when the emitter regresses.

   --expect-no-work SECTION (repeatable) additionally asserts that the
   named section's metrics carry no counter deltas — the guard that the
   per-section Metrics scoping in bench/report.ml really is per-section:
   a cumulative implementation would leak earlier sections' simulator and
   solver counters into a pure-math section like E4.

   --expect-store asserts the document carries the schema-v6 top-level
   "store" object and that its counters prove the run really exercised
   the out-of-core path: spilled_entries > 0 and evictions > 0. This is
   the teeth of the CI spill gate — a budget generous enough to keep
   everything resident would produce a vacuously-passing gate without it.

   --expect-par SECTION (repeatable) asserts the named section carries the
   schema-v3/v4 parallel telemetry: an integer "spawned_domains" >= 1, a
   non-empty "domain_ids" integer list, and a "par_solve" object with a
   numeric "duplicated_work_pct", at least one per-domain entry, and the
   v4 work-stealing counters (steals, claim_hits, claim_misses,
   pruned_subtrees) — the
   guard that a multi-job bench run actually published who ran and what
   each domain's memo table did. *)

let () =
  let expect_no_work = ref []
  and expect_par = ref []
  and expect_store = ref false
  and path = ref None in
  let usage () =
    Fmt.epr
      "usage: schema_check.exe [--expect-no-work SECTION] [--expect-par \
       SECTION] [--expect-store] FILE.json@.";
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--expect-no-work" :: id :: rest ->
        expect_no_work := String.uppercase_ascii id :: !expect_no_work;
        parse rest
    | "--expect-par" :: id :: rest ->
        expect_par := String.uppercase_ascii id :: !expect_par;
        parse rest
    | "--expect-store" :: rest ->
        expect_store := true;
        parse rest
    | arg :: rest when !path = None && String.length arg > 0 && arg.[0] <> '-' ->
        path := Some arg;
        parse rest
    | arg :: _ ->
        Fmt.epr "unknown argument %s@." arg;
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> usage () in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.of_string contents with
  | Error e ->
      Fmt.epr "%s: JSON parse error: %s@." path e;
      exit 1
  | Ok json -> (
      match Obs.Results.validate json with
      | Error e ->
          Fmt.epr "%s: schema error: %s@." path e;
          exit 1
      | Ok () ->
          let sections =
            match Obs.Json.member "experiments" json with
            | Some (Obs.Json.List l) -> l
            | _ -> []
          in
          let section_id s =
            match Obs.Json.member "id" s with
            | Some (Obs.Json.String id) -> String.uppercase_ascii id
            | _ -> ""
          in
          List.iter
            (fun id ->
              match List.find_opt (fun s -> section_id s = id) sections with
              | None ->
                  Fmt.epr "%s: --expect-no-work %s: no such section@." path id;
                  exit 1
              | Some s -> (
                  let counters =
                    match Obs.Json.member "metrics" s with
                    | Some m -> Obs.Json.member "counters" m
                    | None -> None
                  in
                  match counters with
                  | None | Some (Obs.Json.Obj []) -> ()
                  | Some c ->
                      Fmt.epr
                        "%s: section %s expected no counter deltas but has %a — \
                         per-section metric scoping leaked earlier work@."
                        path id Obs.Json.pp c;
                      exit 1))
            !expect_no_work;
          List.iter
            (fun id ->
              match List.find_opt (fun s -> section_id s = id) sections with
              | None ->
                  Fmt.epr "%s: --expect-par %s: no such section@." path id;
                  exit 1
              | Some s ->
                  let fail fmt =
                    Fmt.kstr
                      (fun msg ->
                        Fmt.epr "%s: section %s: %s@." path id msg;
                        exit 1)
                      fmt
                  in
                  let metric name =
                    Option.bind (Obs.Json.member "metrics" s)
                      (Obs.Json.member name)
                  in
                  (match metric "spawned_domains" with
                  | Some (Obs.Json.Int n) when n >= 1 -> ()
                  | _ -> fail "expected integer spawned_domains >= 1");
                  (match metric "domain_ids" with
                  | Some (Obs.Json.List (_ :: _ as ids))
                    when List.for_all
                           (function Obs.Json.Int _ -> true | _ -> false)
                           ids ->
                      ()
                  | _ -> fail "expected non-empty integer list domain_ids");
                  (match metric "par_solve" with
                  | Some (Obs.Json.Obj _ as ps) ->
                      (match
                         Option.bind
                           (Obs.Json.member "duplicated_work_pct" ps)
                           Obs.Json.to_number_opt
                       with
                      | Some _ -> ()
                      | None ->
                          fail "par_solve lacks numeric duplicated_work_pct");
                      (match Obs.Json.member "domains" ps with
                      | Some (Obs.Json.List (_ :: _)) -> ()
                      | _ -> fail "par_solve.domains must be a non-empty list");
                      List.iter
                        (fun key ->
                          match Obs.Json.member key ps with
                          | Some (Obs.Json.Int n) when n >= 0 -> ()
                          | _ -> fail "par_solve lacks integer %s" key)
                        [ "steals"; "claim_hits"; "claim_misses";
                          "pruned_subtrees" ]
                  | _ -> fail "expected par_solve object"))
            !expect_par;
          (if !expect_store then
             let fail fmt =
               Fmt.kstr
                 (fun msg ->
                   Fmt.epr "%s: --expect-store: %s@." path msg;
                   exit 1)
                 fmt
             in
             match Obs.Json.member "store" json with
             | None ->
                 fail
                   "document has no top-level \"store\" block — no budgeted \
                    solve ran"
             | Some st ->
                 let counter name =
                   match
                     Option.bind (Obs.Json.member name st) Obs.Json.to_int_opt
                   with
                   | Some n -> n
                   | None -> fail "store.%s missing or not an integer" name
                 in
                 let spilled = counter "spilled_entries"
                 and evictions = counter "evictions" in
                 if spilled <= 0 then
                   fail
                     "spilled_entries = %d — the budget never forced a spill, \
                      the gate is vacuous"
                     spilled;
                 if evictions <= 0 then
                   fail
                     "evictions = %d — the block cache never evicted, the \
                      budget is too generous for a recovery gate"
                     evictions);
          Fmt.pr "%s: ok (schema v%d, %d experiment sections)@." path
            Obs.Results.schema_version
            (List.length sections))
