(* Validate a bench results document against the Obs.Results schema.

     dune exec bench/schema_check.exe -- bench_smoke.json

   Exits non-zero (with a diagnostic) on parse or schema errors, so the
   @smoke alias fails loudly when the emitter regresses. *)

let () =
  let path =
    match Sys.argv with
    | [| _; path |] -> path
    | _ ->
        Fmt.epr "usage: schema_check.exe FILE.json@.";
        exit 2
  in
  let contents =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Json.of_string contents with
  | Error e ->
      Fmt.epr "%s: JSON parse error: %s@." path e;
      exit 1
  | Ok json -> (
      match Obs.Results.validate json with
      | Error e ->
          Fmt.epr "%s: schema error: %s@." path e;
          exit 1
      | Ok () ->
          let sections =
            match Obs.Json.member "experiments" json with
            | Some (Obs.Json.List l) -> List.length l
            | _ -> 0
          in
          Fmt.pr "%s: ok (schema v%d, %d experiment sections)@." path
            Obs.Results.schema_version sections)
